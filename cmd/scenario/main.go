// Command scenario validates, runs and emits declarative scenario
// files (see internal/scenario and the README's "Scenario files"
// section).
//
//	scenario validate file.json...          strict validation, line-precise errors
//	scenario run [-workers n] file.json...  build + run + deterministic report
//	scenario emit [-dir scenarios] [id...]  serialize the hand-wired experiments
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"aqt/internal/scenario"
	"aqt/internal/stability"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func usage(w io.Writer) {
	fmt.Fprintf(w, "usage: scenario validate file.json...\n")
	fmt.Fprintf(w, "       scenario run [-workers n] file.json...\n")
	fmt.Fprintf(w, "       scenario emit [-dir scenarios] [id...]\n")
	fmt.Fprintf(w, "emittable ids: %v\n", scenario.EmitIDs())
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		usage(stderr)
		return 2
	}
	switch args[0] {
	case "validate":
		return cmdValidate(args[1:], stdout, stderr)
	case "run":
		return cmdRun(args[1:], stdout, stderr)
	case "emit":
		return cmdEmit(args[1:], stdout, stderr)
	default:
		fmt.Fprintf(stderr, "scenario: unknown subcommand %q\n", args[0])
		usage(stderr)
		return 2
	}
}

func cmdValidate(files []string, stdout, stderr io.Writer) int {
	if len(files) == 0 {
		fmt.Fprintln(stderr, "scenario validate: no files")
		return 2
	}
	bad := 0
	for _, f := range files {
		if _, err := scenario.Load(f); err != nil {
			fmt.Fprintln(stderr, err)
			bad++
			continue
		}
		fmt.Fprintf(stdout, "ok\t%s\n", f)
	}
	if bad > 0 {
		return 1
	}
	return 0
}

// runResult is one file's rendered report; rendering happens inside
// the worker, printing in input order afterwards, so the byte output
// is independent of the worker count.
type runResult struct {
	report string
	failed bool
}

func cmdRun(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	fs.SetOutput(stderr)
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	every := fs.Int64("checkpoint-every", 0, "write a checkpoint every N steps (0 = off)")
	ckptDir := fs.String("checkpoint-dir", "checkpoints", "directory for -checkpoint-every files (<spec name>.ckpt.json, overwritten per segment)")
	restore := fs.String("restore", "", "resume a single scenario from this checkpoint file (one input file only)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	files := fs.Args()
	if len(files) == 0 {
		fmt.Fprintln(stderr, "scenario run: no files")
		return 2
	}
	if *restore != "" && len(files) != 1 {
		fmt.Fprintln(stderr, "scenario run: -restore takes exactly one scenario file")
		return 2
	}
	if *every > 0 {
		if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}
	results := stability.SweepGrid(files, func(path string) runResult {
		b, err := scenario.BuildFile(path)
		if err != nil {
			return runResult{report: err.Error() + "\n", failed: true}
		}
		if *restore != "" {
			data, err := os.ReadFile(*restore)
			if err != nil {
				return runResult{report: "scenario run: " + err.Error() + "\n", failed: true}
			}
			cp, err := scenario.DecodeCheckpoint(*restore, data)
			if err != nil {
				return runResult{report: err.Error() + "\n", failed: true}
			}
			if err := b.Restore(cp); err != nil {
				return runResult{report: "scenario run: " + err.Error() + "\n", failed: true}
			}
		}
		var out scenario.Outcome
		switch {
		case *every > 0:
			dest := filepath.Join(*ckptDir, sanitizeName(b.Spec.Name)+".ckpt.json")
			out, err = b.RunCheckpointed(b.Spec.Run.Mode, *every, func(cp *scenario.Checkpoint, step int64) error {
				return os.WriteFile(dest, cp.Encode(), 0o644)
			})
			if err != nil {
				return runResult{report: "scenario run: " + err.Error() + "\n", failed: true}
			}
		case *restore != "":
			out = b.RunRemaining()
		default:
			out = b.Run()
		}
		var buf bytes.Buffer
		b.WriteReport(&buf, out)
		return runResult{report: buf.String(), failed: !out.OK()}
	}, *workers)
	bad := 0
	for i, gr := range results {
		if i > 0 {
			fmt.Fprintln(stdout)
		}
		if gr.Panic != "" {
			fmt.Fprintf(stdout, "%s: PANIC: %s\n", gr.Point, gr.Panic)
			bad++
			continue
		}
		fmt.Fprint(stdout, gr.Value.report)
		if gr.Value.failed {
			bad++
		}
	}
	if bad > 0 {
		return 1
	}
	return 0
}

// sanitizeName maps a spec's display name to a safe file stem.
func sanitizeName(name string) string {
	out := make([]rune, 0, len(name))
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	if len(out) == 0 {
		return "scenario"
	}
	return string(out)
}

func cmdEmit(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("emit", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", "scenarios", "output directory")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	ids := fs.Args()
	if len(ids) == 0 {
		ids = scenario.EmitIDs()
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	results := stability.SweepGrid(ids, scenario.Emit, 0)
	for _, gr := range results {
		if gr.Panic != "" {
			fmt.Fprintf(stderr, "emit %s: PANIC: %s\n", gr.Point, gr.Panic)
			return 1
		}
		em := gr.Value
		path := filepath.Join(*dir, em.ID+".json")
		if err := os.WriteFile(path, em.Spec.Encode(), 0o644); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote\t%s\t(%s, %d steps)\n", path, em.Spec.Name, em.Spec.Run.Steps)
	}
	return 0
}
