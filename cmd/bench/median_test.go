package main

import (
	"testing"
	"time"

	"aqt/internal/sim"
)

// fakeSpec returns a benchSpec whose successive runs report the given
// ns/op values in order.
func fakeSpec(ns ...int64) benchSpec {
	i := 0
	return benchSpec{
		name: "fake",
		run: func() (testing.BenchmarkResult, sim.StepStats) {
			res := testing.BenchmarkResult{N: 1, T: time.Duration(ns[i])}
			i++
			return res, sim.StepStats{}
		},
	}
}

// TestMedianPicksMiddleRun pins the -count aggregation: the recorded
// entry is the median run by ns/op (lower median for even counts), so
// a single outlier on a loaded machine cannot move the trajectory.
func TestMedianPicksMiddleRun(t *testing.T) {
	cases := []struct {
		name  string
		runs  []int64
		count int
		want  float64
	}{
		{"odd count takes middle", []int64{900, 100000, 1000}, 3, 1000},
		{"single run passes through", []int64{1234}, 1, 1234},
		{"even count takes lower median", []int64{400, 100, 300, 200}, 4, 200},
		{"outlier discarded", []int64{1000, 1001, 999, 50000, 998}, 5, 1000},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := median(fakeSpec(c.runs...), c.count)
			if got.NsPerOp != c.want {
				t.Errorf("median ns/op = %v, want %v", got.NsPerOp, c.want)
			}
			if got.Name != "fake" {
				t.Errorf("median entry name = %q", got.Name)
			}
		})
	}
}
