// Command bench runs the engine hot-path microbenchmarks outside `go
// test` and emits the results as JSON, so successive PRs can record a
// BENCH_<label>.json trajectory and diff ns/step and allocs/op over
// time.
//
// Usage:
//
//	bench                           # JSON to stdout
//	bench -label pr1                # write BENCH_pr1.json
//	bench -against BENCH_prev.json  # run, diff, exit 1 on regression
//
// The configurations mirror BenchmarkStep in internal/sim: policies
// FIFO (ring-deque pop-front), LIS and NTG (keyed-heap fast path)
// crossed with Line(32), Ring(16) and the G_ε instability graph, under
// sustained random (w,r) traffic, plus the pure drain regime of a
// large seeded FIFO buffer and the Recorder-observed variants
// (Line 32/256, stride 1) that exercise the incremental max-queue
// observation path.
//
// -against is the CI diff mode: entries are matched by name against a
// previous report and the command exits nonzero when ns/op grew by
// more than the tolerance (default 10%) or allocs/op increased at all.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"aqt/internal/adversary"
	"aqt/internal/gadget"
	"aqt/internal/graph"
	"aqt/internal/packet"
	"aqt/internal/policy"
	"aqt/internal/rational"
	"aqt/internal/sim"
)

// Entry is one benchmark result row.
type Entry struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// EngineNsPerStep is the engine's own StepStats timing for the
	// same run — the counter reports and these benchmarks must agree.
	EngineNsPerStep float64 `json:"engine_ns_per_step"`
}

// Report is the emitted JSON document.
type Report struct {
	Label     string  `json:"label"`
	GoVersion string  `json:"go_version"`
	GOOS      string  `json:"goos"`
	GOARCH    string  `json:"goarch"`
	Timestamp string  `json:"timestamp"`
	Entries   []Entry `json:"entries"`
}

func main() {
	label := flag.String("label", "", "benchmark label; writes BENCH_<label>.json when set")
	out := flag.String("o", "", "output path (\"-\" or empty = stdout unless -label is set)")
	against := flag.String("against", "", "previous BENCH_*.json to diff against; exits 1 on regression")
	tol := flag.Float64("tol", DefaultNsTolerance, "relative ns/op increase tolerated in -against mode")
	flag.Parse()

	topos := []struct {
		name   string
		build  func() *graph.Graph
		maxLen int
	}{
		{"Line32", func() *graph.Graph { return graph.Line(32) }, 4},
		{"Ring16", func() *graph.Graph { return graph.Ring(16) }, 4},
		{"Geps", func() *graph.Graph { return gadget.NewChain(3, 3, true).G }, 5},
	}
	policies := []policy.Policy{policy.FIFO{}, policy.LIS{}, policy.NTG{}}

	rep := Report{
		Label:     *label,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Timestamp: time.Now().UTC().Format(time.RFC3339),
	}

	for _, tp := range topos {
		for _, pol := range policies {
			name := fmt.Sprintf("Step/%s/%s", tp.name, pol.Name())
			var eng *sim.Engine
			res := testing.Benchmark(func(b *testing.B) {
				g := tp.build()
				adv := adversary.NewRandomWR(g, 24, rational.New(1, 3), tp.maxLen, 7)
				eng = sim.New(g, pol, adv)
				eng.Run(256)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					eng.Step()
				}
			})
			rep.Entries = append(rep.Entries, entry(name, res, eng.Stats()))
			fmt.Fprintf(os.Stderr, "%-24s %10.0f ns/op %6d allocs/op\n",
				name, float64(res.NsPerOp()), res.AllocsPerOp())
		}
	}

	// The Lemma 3.3 reroute regime: to-go policies under sustained
	// route replacement at a gadget ingress. This is the workload the
	// keyed-heap tombstone scheme exists for — the eager rebuild paid
	// O(S) per reroute here.
	for _, pol := range []policy.Policy{policy.NTG{}, policy.FTG{}} {
		for _, s := range []int{1 << 10, 1 << 13} {
			name := fmt.Sprintf("StepReroute/Geps/%s/S=%d", pol.Name(), s)
			var eng *sim.Engine
			res := testing.Benchmark(func(b *testing.B) {
				c := gadget.NewChain(3, 2, false)
				full := c.LongRoute(1)
				mk := func() *sim.Engine {
					e := sim.New(c.G, pol, &rerouteChurn{full: full, touch: 8})
					e.SeedN(s, packet.Inj(full...))
					return e
				}
				eng = mk()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if eng.Queue(full[0]).Len() < s/2 {
						b.StopTimer()
						eng = mk()
						b.StartTimer()
					}
					eng.Step()
				}
			})
			rep.Entries = append(rep.Entries, entry(name, res, eng.Stats()))
			fmt.Fprintf(os.Stderr, "%-24s %10.0f ns/op %6d allocs/op\n",
				name, float64(res.NsPerOp()), res.AllocsPerOp())
		}
	}

	for _, s := range []int{1 << 10, 1 << 14} {
		name := fmt.Sprintf("StepSeededFIFO/S=%d", s)
		g := graph.Line(8)
		route := []graph.EdgeID{g.MustEdge("e1"), g.MustEdge("e2"), g.MustEdge("e3")}
		var eng *sim.Engine
		res := testing.Benchmark(func(b *testing.B) {
			eng = sim.New(g, policy.FIFO{}, nil)
			eng.SeedN(s, packet.Inj(route...))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if eng.TotalQueued() == 0 {
					b.StopTimer()
					eng = sim.New(g, policy.FIFO{}, nil)
					eng.SeedN(s, packet.Inj(route...))
					b.StartTimer()
				}
				eng.Step()
			}
		})
		rep.Entries = append(rep.Entries, entry(name, res, eng.Stats()))
		fmt.Fprintf(os.Stderr, "%-24s %10.0f ns/op %6d allocs/op\n",
			name, float64(res.NsPerOp()), res.AllocsPerOp())
	}

	// The Recorder-observed path: stride-1 peak tracking on Line(32)
	// and Line(256). Before the incremental max these scaled per-step
	// cost with edge count; the Line256 row pins that they no longer do.
	for _, n := range []int{32, 256} {
		name := fmt.Sprintf("StepRecorded/Line%d/FIFO", n)
		var eng *sim.Engine
		res := testing.Benchmark(func(b *testing.B) {
			g := graph.Line(n)
			adv := adversary.NewRandomWR(g, 24, rational.New(1, 3), 4, 7)
			eng = sim.New(g, policy.FIFO{}, adv)
			eng.AddObserver(sim.NewRecorder(1))
			eng.Run(256)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.Step()
			}
		})
		rep.Entries = append(rep.Entries, entry(name, res, eng.Stats()))
		fmt.Fprintf(os.Stderr, "%-24s %10.0f ns/op %6d allocs/op\n",
			name, float64(res.NsPerOp()), res.AllocsPerOp())
	}

	path := *out
	if path == "" && *label != "" {
		path = "BENCH_" + *label + ".json"
	}
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(2)
	}
	enc = append(enc, '\n')
	switch {
	case path == "" || path == "-":
		// In diff mode the report below is the product; don't drown it
		// in JSON unless an output was requested.
		if *against == "" {
			os.Stdout.Write(enc)
		}
	default:
		if err := os.WriteFile(path, enc, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}

	if *against != "" {
		raw, err := os.ReadFile(*against)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(2)
		}
		var prev Report
		if err := json.Unmarshal(raw, &prev); err != nil {
			fmt.Fprintf(os.Stderr, "bench: parsing %s: %v\n", *against, err)
			os.Exit(2)
		}
		report, regressed := Diff(prev, rep, *tol)
		os.Stdout.WriteString(report)
		if regressed {
			os.Exit(1)
		}
	}
}

// rerouteChurn mirrors the adversary of BenchmarkStepReroute in
// internal/sim: each step it alternates truncating and restoring the
// routes of 8 ingress packets, changing their to-go selection keys.
type rerouteChurn struct {
	full  []graph.EdgeID
	tick  int
	touch int
}

func (c *rerouteChurn) PreStep(e *sim.Engine) {
	q := e.Queue(c.full[0])
	n := q.Len()
	if n == 0 {
		return
	}
	for i := 0; i < c.touch; i++ {
		c.tick++
		p := q.At(c.tick * 37 % n)
		if c.tick%2 == 0 {
			e.ReplaceRouteSuffix(p, nil)
		} else {
			e.ReplaceRouteSuffix(p, c.full[1:])
		}
	}
}

func (*rerouteChurn) Inject(*sim.Engine) []packet.Injection { return nil }

func entry(name string, res testing.BenchmarkResult, st sim.StepStats) Entry {
	return Entry{
		Name:            name,
		Iterations:      res.N,
		NsPerOp:         float64(res.NsPerOp()),
		AllocsPerOp:     res.AllocsPerOp(),
		BytesPerOp:      res.AllocedBytesPerOp(),
		EngineNsPerStep: st.NsPerStep(),
	}
}
