// Command bench runs the engine hot-path microbenchmarks outside `go
// test` and emits the results as JSON, so successive PRs can record a
// BENCH_<label>.json trajectory and diff ns/step and allocs/op over
// time.
//
// Usage:
//
//	bench                           # JSON to stdout
//	bench -label pr1                # write BENCH_pr1.json
//	bench -against BENCH_prev.json  # run, diff, exit 1 on regression
//	bench -count 9                  # 9 runs per entry, medians recorded
//
// The configurations mirror BenchmarkStep in internal/sim: policies
// FIFO (ring-deque pop-front), LIS and NTG (keyed-heap fast path)
// crossed with Line(32), Ring(16) and the G_ε instability graph, under
// sustained random (w,r) traffic, plus the pure drain regime of a
// large seeded FIFO buffer, the Recorder-observed variants
// (Line 32/256, stride 1) that exercise the incremental max-queue
// observation path, the StepTraced/StepMetered pair (Line 32 with the
// obs flight recorder on the event hooks resp. the metrics Meter on
// the step dispatch path — the observability cost budget), and the
// SweepParallel pair (a 7-point rate sweep
// run sequentially vs. fanned across the stability.SweepGrid worker
// pool — the parallel entry's ns/op divides by ~min(7, GOMAXPROCS) on
// a multicore machine), and the leap-mode pairs (StepLeap/Burst: a
// periodic burst drain run stepped vs. leaped; RunLeapE13: a Lemma 3.6
// pump with a long quiet tail, the long-horizon regime RunLeap exists
// for — the leap entry must beat its step twin by >= 10x).
//
// Every entry is measured -count times (default 5) and the median run
// (by ns/op) is recorded, so a single noisy run on a loaded machine
// neither pollutes the trajectory nor trips the -against gate.
//
// -against is the CI diff mode: entries are matched by name against a
// previous report and the command exits nonzero when ns/op grew by
// more than the tolerance (default 10%) or allocs/op increased —
// strictly for hot-path entries, beyond a 0.05% slack for macro
// entries (see allocSlack in diff.go).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"aqt/internal/adversary"
	"aqt/internal/baselines"
	"aqt/internal/core"
	"aqt/internal/gadget"
	"aqt/internal/graph"
	"aqt/internal/obs"
	"aqt/internal/packet"
	"aqt/internal/policy"
	"aqt/internal/rational"
	"aqt/internal/sim"
	"aqt/internal/stability"
)

// Entry is one benchmark result row.
type Entry struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// EngineNsPerStep is the engine's own StepStats timing for the
	// same run — the counter reports and these benchmarks must agree.
	EngineNsPerStep float64 `json:"engine_ns_per_step"`
}

// Report is the emitted JSON document.
type Report struct {
	Label     string `json:"label"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	Timestamp string `json:"timestamp"`
	// Count is the number of runs behind each entry; entries record
	// the median run by ns/op (0 or 1 = single runs, pre-PR4 reports).
	Count   int     `json:"count,omitempty"`
	Entries []Entry `json:"entries"`
}

// benchSpec is one named benchmark configuration; run executes it once
// from scratch.
type benchSpec struct {
	name string
	run  func() (testing.BenchmarkResult, sim.StepStats)
}

func main() {
	label := flag.String("label", "", "benchmark label; writes BENCH_<label>.json when set")
	out := flag.String("o", "", "output path (\"-\" or empty = stdout unless -label is set)")
	against := flag.String("against", "", "previous BENCH_*.json to diff against; exits 1 on regression")
	tol := flag.Float64("tol", DefaultNsTolerance, "relative ns/op increase tolerated in -against mode")
	count := flag.Int("count", 5, "runs per entry; the median run by ns/op is recorded")
	flag.Parse()
	if *count < 1 {
		*count = 1
	}

	rep := Report{
		Label:     *label,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Count:     *count,
	}

	for _, sp := range specs() {
		med := median(sp, *count)
		rep.Entries = append(rep.Entries, med)
		fmt.Fprintf(os.Stderr, "%-24s %10.0f ns/op %6d allocs/op\n",
			med.Name, med.NsPerOp, med.AllocsPerOp)
	}

	path := *out
	if path == "" && *label != "" {
		path = "BENCH_" + *label + ".json"
	}
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(2)
	}
	enc = append(enc, '\n')
	switch {
	case path == "" || path == "-":
		// In diff mode the report below is the product; don't drown it
		// in JSON unless an output was requested.
		if *against == "" {
			os.Stdout.Write(enc)
		}
	default:
		if err := os.WriteFile(path, enc, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}

	if *against != "" {
		raw, err := os.ReadFile(*against)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(2)
		}
		var prev Report
		if err := json.Unmarshal(raw, &prev); err != nil {
			fmt.Fprintf(os.Stderr, "bench: parsing %s: %v\n", *against, err)
			os.Exit(2)
		}
		report, regressed := Diff(prev, rep, *tol)
		os.Stdout.WriteString(report)
		if regressed {
			os.Exit(1)
		}
	}
}

// median runs the spec count times and returns the median run by
// ns/op (the lower median for even counts), so one descheduled run on
// a loaded machine cannot skew the recorded trajectory point.
func median(sp benchSpec, count int) Entry {
	entries := make([]Entry, count)
	for i := range entries {
		res, st := sp.run()
		entries[i] = entry(sp.name, res, st)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].NsPerOp < entries[j].NsPerOp })
	return entries[(count-1)/2]
}

// specs assembles every benchmark configuration.
func specs() []benchSpec {
	var out []benchSpec

	topos := []struct {
		name   string
		build  func() *graph.Graph
		maxLen int
	}{
		{"Line32", func() *graph.Graph { return graph.Line(32) }, 4},
		{"Ring16", func() *graph.Graph { return graph.Ring(16) }, 4},
		{"Geps", func() *graph.Graph { return gadget.NewChain(3, 3, true).G }, 5},
	}
	for _, tp := range topos {
		for _, pol := range []policy.Policy{policy.FIFO{}, policy.LIS{}, policy.NTG{}} {
			tp, pol := tp, pol
			out = append(out, benchSpec{
				name: fmt.Sprintf("Step/%s/%s", tp.name, pol.Name()),
				run: func() (testing.BenchmarkResult, sim.StepStats) {
					var eng *sim.Engine
					res := testing.Benchmark(func(b *testing.B) {
						g := tp.build()
						adv := adversary.NewRandomWR(g, 24, rational.New(1, 3), tp.maxLen, 7)
						eng = sim.New(g, pol, adv)
						eng.Run(256)
						b.ReportAllocs()
						b.ResetTimer()
						for i := 0; i < b.N; i++ {
							eng.Step()
						}
					})
					return res, eng.Stats()
				},
			})
		}
	}

	// The bounded-buffer pair: the Step/Line32/FIFO traffic run through
	// NewWithConfig, once with cap 0 (the unbounded control — must match
	// Step/Line32/FIFO, pinning that the bounded branch costs nothing
	// when off) and once with a cap-8 drop-tail buffer (the capacity
	// check plus drop accounting on every enqueue). Both stay
	// allocation-free on the hot path.
	for _, cfg := range []struct {
		name string
		cap  int
		drop sim.DropPolicy
	}{{"StepBounded/Line32/fifo", 0, nil}, {"StepBounded/Line32/droptail", 8, sim.DropTail{}}} {
		cfg := cfg
		out = append(out, benchSpec{
			name: cfg.name,
			run: func() (testing.BenchmarkResult, sim.StepStats) {
				var eng *sim.Engine
				res := testing.Benchmark(func(b *testing.B) {
					g := graph.Line(32)
					adv := adversary.NewRandomWR(g, 24, rational.New(1, 3), 4, 7)
					eng = sim.NewWithConfig(g, policy.FIFO{}, adv,
						sim.Config{BufferCap: cfg.cap, Drop: cfg.drop})
					eng.Run(256)
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						eng.Step()
					}
				})
				return res, eng.Stats()
			},
		})
	}

	// The Lemma 3.3 reroute regime: to-go policies under sustained
	// route replacement at a gadget ingress. This is the workload the
	// keyed-heap tombstone scheme exists for — the eager rebuild paid
	// O(S) per reroute here.
	for _, pol := range []policy.Policy{policy.NTG{}, policy.FTG{}} {
		for _, s := range []int{1 << 10, 1 << 13} {
			pol, s := pol, s
			out = append(out, benchSpec{
				name: fmt.Sprintf("StepReroute/Geps/%s/S=%d", pol.Name(), s),
				run: func() (testing.BenchmarkResult, sim.StepStats) {
					var eng *sim.Engine
					res := testing.Benchmark(func(b *testing.B) {
						c := gadget.NewChain(3, 2, false)
						full := c.LongRoute(1)
						mk := func() *sim.Engine {
							e := sim.New(c.G, pol, &rerouteChurn{full: full, touch: 8})
							e.SeedN(s, packet.Inj(full...))
							return e
						}
						eng = mk()
						b.ReportAllocs()
						b.ResetTimer()
						for i := 0; i < b.N; i++ {
							if eng.Queue(full[0]).Len() < s/2 {
								b.StopTimer()
								eng = mk()
								b.StartTimer()
							}
							eng.Step()
						}
					})
					return res, eng.Stats()
				},
			})
		}
	}

	for _, s := range []int{1 << 10, 1 << 14} {
		s := s
		out = append(out, benchSpec{
			name: fmt.Sprintf("StepSeededFIFO/S=%d", s),
			run: func() (testing.BenchmarkResult, sim.StepStats) {
				g := graph.Line(8)
				route := []graph.EdgeID{g.MustEdge("e1"), g.MustEdge("e2"), g.MustEdge("e3")}
				var eng *sim.Engine
				res := testing.Benchmark(func(b *testing.B) {
					eng = sim.New(g, policy.FIFO{}, nil)
					eng.SeedN(s, packet.Inj(route...))
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if eng.TotalQueued() == 0 {
							b.StopTimer()
							eng = sim.New(g, policy.FIFO{}, nil)
							eng.SeedN(s, packet.Inj(route...))
							b.StartTimer()
						}
						eng.Step()
					}
				})
				return res, eng.Stats()
			},
		})
	}

	// The Recorder-observed path: stride-1 peak tracking on Line(32)
	// and Line(256). Before the incremental max these scaled per-step
	// cost with edge count; the Line256 row pins that they no longer do.
	for _, n := range []int{32, 256} {
		n := n
		out = append(out, benchSpec{
			name: fmt.Sprintf("StepRecorded/Line%d/FIFO", n),
			run: func() (testing.BenchmarkResult, sim.StepStats) {
				var eng *sim.Engine
				res := testing.Benchmark(func(b *testing.B) {
					g := graph.Line(n)
					adv := adversary.NewRandomWR(g, 24, rational.New(1, 3), 4, 7)
					eng = sim.New(g, policy.FIFO{}, adv)
					eng.AddObserver(sim.NewRecorder(1))
					eng.Run(256)
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						eng.Step()
					}
				})
				return res, eng.Stats()
			},
		})
	}

	// The observability overhead pair: the same Line(32) traffic with
	// the flight recorder on the event hooks (StepTraced) and the
	// metrics Meter on the per-step dispatch path (StepMetered). Both
	// must stay allocation-free; their ns/op gap over StepRecorded is
	// the cost budget of `internal/obs`.
	out = append(out, benchSpec{
		name: "StepTraced/Line32/FIFO",
		run: func() (testing.BenchmarkResult, sim.StepStats) {
			var eng *sim.Engine
			res := testing.Benchmark(func(b *testing.B) {
				g := graph.Line(32)
				adv := adversary.NewRandomWR(g, 24, rational.New(1, 3), 4, 7)
				eng = sim.New(g, policy.FIFO{}, adv)
				eng.AddEventObserver(obs.NewFlightRecorder(4096))
				eng.Run(256)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					eng.Step()
				}
			})
			return res, eng.Stats()
		},
	})
	out = append(out, benchSpec{
		name: "StepMetered/Line32/FIFO",
		run: func() (testing.BenchmarkResult, sim.StepStats) {
			var eng *sim.Engine
			res := testing.Benchmark(func(b *testing.B) {
				g := graph.Line(32)
				adv := adversary.NewRandomWR(g, 24, rational.New(1, 3), 4, 7)
				eng = sim.New(g, policy.FIFO{}, adv)
				eng.AddObserver(obs.NewMeter(nil))
				eng.Run(256)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					eng.Step()
				}
			})
			return res, eng.Stats()
		},
	})

	// The live-telemetry pair (PR 10): StepSampled adds the time-series
	// Sampler on the step hook, StepSpanTraced the per-packet span
	// tracer on the event hooks. Both ride the same Line(32) traffic and
	// both must stay allocation-free — the telemetry layer's admission
	// price into the hot path.
	out = append(out, benchSpec{
		name: "StepSampled/Line32/FIFO",
		run: func() (testing.BenchmarkResult, sim.StepStats) {
			var eng *sim.Engine
			res := testing.Benchmark(func(b *testing.B) {
				g := graph.Line(32)
				adv := adversary.NewRandomWR(g, 24, rational.New(1, 3), 4, 7)
				eng = sim.New(g, policy.FIFO{}, adv)
				sam := obs.NewSampler(obs.SamplerConfig{Every: 4, MaxSamples: 512})
				sam.Attach(eng)
				eng.Run(256)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					eng.Step()
				}
			})
			return res, eng.Stats()
		},
	})
	out = append(out, benchSpec{
		name: "StepSpanTraced/Line32/FIFO",
		run: func() (testing.BenchmarkResult, sim.StepStats) {
			var eng *sim.Engine
			res := testing.Benchmark(func(b *testing.B) {
				g := graph.Line(32)
				adv := adversary.NewRandomWR(g, 24, rational.New(1, 3), 4, 7)
				eng = sim.New(g, policy.FIFO{}, adv)
				st := obs.NewSpanTracer(obs.SpanConfig{SampleEvery: 16, Seed: 7})
				st.Attach(eng)
				eng.Run(256)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					eng.Step()
				}
			})
			return res, eng.Stats()
		},
	})

	// The checkpoint pair: CheckpointSave is one full state capture plus
	// JSON encode of a warmed Line(32) engine under random (w,r)
	// traffic; CheckpointRestore is the full resume path — decode the
	// document, build a fresh engine the same way, and apply the state.
	// Neither is a hot path (they run once per segment, not per step),
	// so the trajectory pins absolute cost, not allocs.
	out = append(out, benchSpec{
		name: "CheckpointSave/Line32",
		run: func() (testing.BenchmarkResult, sim.StepStats) {
			var eng *sim.Engine
			res := testing.Benchmark(func(b *testing.B) {
				g := graph.Line(32)
				adv := adversary.NewRandomWR(g, 24, rational.New(1, 3), 4, 7)
				eng = sim.New(g, policy.FIFO{}, adv)
				eng.Run(2048)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					cp, err := eng.Checkpoint()
					if err != nil {
						b.Fatal(err)
					}
					_ = cp.Encode()
				}
			})
			return res, eng.Stats()
		},
	})
	out = append(out, benchSpec{
		name: "CheckpointRestore/Line32",
		run: func() (testing.BenchmarkResult, sim.StepStats) {
			mk := func() (*sim.Engine, *graph.Graph) {
				g := graph.Line(32)
				adv := adversary.NewRandomWR(g, 24, rational.New(1, 3), 4, 7)
				return sim.New(g, policy.FIFO{}, adv), g
			}
			src, _ := mk()
			src.Run(2048)
			cp, err := src.Checkpoint()
			if err != nil {
				panic(err)
			}
			data := cp.Encode()
			var eng *sim.Engine
			res := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					cp2, err := sim.DecodeCheckpoint(data)
					if err != nil {
						b.Fatal(err)
					}
					eng, _ = mk()
					if err := eng.Restore(cp2); err != nil {
						b.Fatal(err)
					}
				}
			})
			return res, eng.Stats()
		},
	})

	// BenchmarkSweepParallel: the PR4 parallel probe layer on a 7-point
	// rate grid (depth 6, capped pumps) — sequential pool vs. GOMAXPROCS
	// fan-out. One op is the whole sweep; engines are per-probe, so the
	// parallel entry's wall-clock divides by ~min(7, GOMAXPROCS) on a
	// multicore machine and matches the sequential one at GOMAXPROCS=1.
	for _, cfg := range []struct {
		name    string
		workers int
	}{{"SweepParallel/Rate7/seq", 1}, {"SweepParallel/Rate7/par", 0}} {
		cfg := cfg
		out = append(out, benchSpec{
			name: cfg.name,
			run: func() (testing.BenchmarkResult, sim.StepStats) {
				pts := sweepGridPoints()
				res := testing.Benchmark(func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						baselines.PumpGrid(pts, 400, cfg.workers)
					}
				})
				return res, sim.StepStats{}
			},
		})
	}

	// The leap-mode equivalence pair: a single-edge burst adversary
	// (64-packet burst every 32768 steps, all packets final on
	// injection) run over a 2^17-step horizon. The step entry pays every
	// step; the leap entry covers each period with one drain window and
	// one idle window. One op is the whole run, so the ns/op ratio is
	// the leap speedup on this workload. The per-packet drain work is
	// identical on both sides, so the burst must stay small relative to
	// the idle gap for the skipped steps to dominate the ratio.
	for _, mode := range []string{"step", "leap"} {
		mode := mode
		out = append(out, benchSpec{
			name: "StepLeap/Burst/" + mode,
			run: func() (testing.BenchmarkResult, sim.StepStats) {
				const horizon = 1 << 17
				g := graph.Line(8)
				route := []graph.EdgeID{g.MustEdge("e1")}
				var eng *sim.Engine
				res := testing.Benchmark(func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						b.StopTimer()
						adv := adversary.NewBurstScript(adversary.BurstStream{
							Name: "burst", Start: 1, Period: 32768, Burst: 64,
							Budget: -1, Route: route,
						})
						eng = sim.New(g, policy.FIFO{}, adv)
						b.StartTimer()
						if mode == "leap" {
							eng.RunLeap(horizon)
						} else {
							eng.Run(horizon)
						}
					}
				})
				return res, eng.Stats()
			},
		})
	}

	// The long-horizon instability regime RunLeap exists for: one
	// Lemma 3.6 pump (stepped on both sides — its streams pin the static
	// horizon) followed by a drain-out and a long provably-idle tail to
	// a fixed 2^25-step horizon. internal/stability and the E13/B1
	// runners run exactly this shape via RunLeap; the leap entry must
	// beat the step entry by >= 10x. The pump uses the nearhalf seed
	// (s=4000-scale, here 1000) rather than 4*S0: the pump's per-packet
	// work is paid identically on both sides, so a large seed would
	// drown the idle tail the leap skips and flatten the ratio.
	for _, mode := range []string{"step", "leap"} {
		mode := mode
		out = append(out, benchSpec{
			name: "RunLeapE13/" + mode,
			run: func() (testing.BenchmarkResult, sim.StepStats) {
				p := core.ParamsFor(rational.New(1, 2), 12)
				const seed = 1000
				const horizon = 1 << 25
				var eng *sim.Engine
				res := testing.Benchmark(func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						b.StopTimer()
						c := gadget.NewChain(p.N, 2, false)
						eng = sim.New(c.G, policy.FIFO{}, nil)
						c.SeedInvariant(eng, 1, seed)
						var rep core.PumpReport
						seq := adversary.NewSequence(core.PumpPhase(p, c, 1, nil, &rep))
						eng.SetAdversary(seq)
						b.StartTimer()
						if mode == "leap" {
							eng.RunLeap(horizon)
						} else {
							eng.Run(horizon)
						}
					}
				})
				return res, eng.Stats()
			},
		})
	}

	return out
}

// sweepGridPoints is the 7-point rate grid of the SweepParallel pair:
// r = 0.5 .. 0.8 at depth 6, the cmd/sweep default shape.
func sweepGridPoints() []stability.Point {
	pts := make([]stability.Point, 7)
	for i := range pts {
		f := 0.5 + 0.3*float64(i)/6
		pts[i] = stability.Point{Rate: rational.FromFloat(f, 4096), Depth: 6}
	}
	return pts
}

// rerouteChurn mirrors the adversary of BenchmarkStepReroute in
// internal/sim: each step it alternates truncating and restoring the
// routes of 8 ingress packets, changing their to-go selection keys.
type rerouteChurn struct {
	full  []graph.EdgeID
	tick  int
	touch int
}

func (c *rerouteChurn) PreStep(e *sim.Engine) {
	q := e.Queue(c.full[0])
	n := q.Len()
	if n == 0 {
		return
	}
	for i := 0; i < c.touch; i++ {
		c.tick++
		p := q.At(c.tick * 37 % n)
		if c.tick%2 == 0 {
			e.ReplaceRouteSuffix(p, nil)
		} else {
			e.ReplaceRouteSuffix(p, c.full[1:])
		}
	}
}

func (*rerouteChurn) Inject(*sim.Engine) []packet.Injection { return nil }

func entry(name string, res testing.BenchmarkResult, st sim.StepStats) Entry {
	return Entry{
		Name:            name,
		Iterations:      res.N,
		NsPerOp:         float64(res.NsPerOp()),
		AllocsPerOp:     res.AllocsPerOp(),
		BytesPerOp:      res.AllocedBytesPerOp(),
		EngineNsPerStep: st.NsPerStep(),
	}
}
