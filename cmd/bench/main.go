// Command bench runs the engine hot-path microbenchmarks outside `go
// test` and emits the results as JSON, so successive PRs can record a
// BENCH_<label>.json trajectory and diff ns/step and allocs/op over
// time.
//
// Usage:
//
//	bench              # JSON to stdout
//	bench -label pr1   # write BENCH_pr1.json
//
// The configurations mirror BenchmarkStep in internal/sim: policies
// FIFO (ring-deque pop-front), LIS and NTG (keyed-heap fast path)
// crossed with Line(32), Ring(16) and the G_ε instability graph, under
// sustained random (w,r) traffic, plus the pure drain regime of a
// large seeded FIFO buffer.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"aqt/internal/adversary"
	"aqt/internal/gadget"
	"aqt/internal/graph"
	"aqt/internal/packet"
	"aqt/internal/policy"
	"aqt/internal/rational"
	"aqt/internal/sim"
)

// Entry is one benchmark result row.
type Entry struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// EngineNsPerStep is the engine's own StepStats timing for the
	// same run — the counter reports and these benchmarks must agree.
	EngineNsPerStep float64 `json:"engine_ns_per_step"`
}

// Report is the emitted JSON document.
type Report struct {
	Label     string  `json:"label"`
	GoVersion string  `json:"go_version"`
	GOOS      string  `json:"goos"`
	GOARCH    string  `json:"goarch"`
	Timestamp string  `json:"timestamp"`
	Entries   []Entry `json:"entries"`
}

func main() {
	label := flag.String("label", "", "benchmark label; writes BENCH_<label>.json when set")
	out := flag.String("o", "", "output path (\"-\" or empty = stdout unless -label is set)")
	flag.Parse()

	topos := []struct {
		name   string
		build  func() *graph.Graph
		maxLen int
	}{
		{"Line32", func() *graph.Graph { return graph.Line(32) }, 4},
		{"Ring16", func() *graph.Graph { return graph.Ring(16) }, 4},
		{"Geps", func() *graph.Graph { return gadget.NewChain(3, 3, true).G }, 5},
	}
	policies := []policy.Policy{policy.FIFO{}, policy.LIS{}, policy.NTG{}}

	rep := Report{
		Label:     *label,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Timestamp: time.Now().UTC().Format(time.RFC3339),
	}

	for _, tp := range topos {
		for _, pol := range policies {
			name := fmt.Sprintf("Step/%s/%s", tp.name, pol.Name())
			var eng *sim.Engine
			res := testing.Benchmark(func(b *testing.B) {
				g := tp.build()
				adv := adversary.NewRandomWR(g, 24, rational.New(1, 3), tp.maxLen, 7)
				eng = sim.New(g, pol, adv)
				eng.Run(256)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					eng.Step()
				}
			})
			rep.Entries = append(rep.Entries, entry(name, res, eng.Stats()))
			fmt.Fprintf(os.Stderr, "%-24s %10.0f ns/op %6d allocs/op\n",
				name, float64(res.NsPerOp()), res.AllocsPerOp())
		}
	}

	for _, s := range []int{1 << 10, 1 << 14} {
		name := fmt.Sprintf("StepSeededFIFO/S=%d", s)
		g := graph.Line(8)
		route := []graph.EdgeID{g.MustEdge("e1"), g.MustEdge("e2"), g.MustEdge("e3")}
		var eng *sim.Engine
		res := testing.Benchmark(func(b *testing.B) {
			eng = sim.New(g, policy.FIFO{}, nil)
			eng.SeedN(s, packet.Inj(route...))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if eng.TotalQueued() == 0 {
					b.StopTimer()
					eng = sim.New(g, policy.FIFO{}, nil)
					eng.SeedN(s, packet.Inj(route...))
					b.StartTimer()
				}
				eng.Step()
			}
		})
		rep.Entries = append(rep.Entries, entry(name, res, eng.Stats()))
		fmt.Fprintf(os.Stderr, "%-24s %10.0f ns/op %6d allocs/op\n",
			name, float64(res.NsPerOp()), res.AllocsPerOp())
	}

	path := *out
	if path == "" && *label != "" {
		path = "BENCH_" + *label + ".json"
	}
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(2)
	}
	enc = append(enc, '\n')
	if path == "" || path == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(path, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
}

func entry(name string, res testing.BenchmarkResult, st sim.StepStats) Entry {
	return Entry{
		Name:            name,
		Iterations:      res.N,
		NsPerOp:         float64(res.NsPerOp()),
		AllocsPerOp:     res.AllocsPerOp(),
		BytesPerOp:      res.AllocedBytesPerOp(),
		EngineNsPerStep: st.NsPerStep(),
	}
}
