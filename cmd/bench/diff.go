package main

import (
	"fmt"
	"sort"
	"strings"
)

// DefaultNsTolerance is the relative ns/op increase tolerated before an
// entry counts as regressed in -against mode.
const DefaultNsTolerance = 0.10

// allocSlack is the absolute allocs/op increase tolerated for an entry
// whose previous count was prevAllocs. Hot-path entries (anything under
// 2000 allocs/op, which includes every 0-allocs/op gate) get zero slack
// — any new allocation fails. Macro entries measuring whole runs with
// tens of thousands of allocations per op get 0.05%: their counts pick
// up single-digit background runtime allocations that track binary
// composition, not the measured code (verified by rebuilding an
// unchanged tree with a blank net/http import, which alone shifts
// SweepParallel/RunLeapE13 by +3 allocs/op).
func allocSlack(prevAllocs int64) int64 {
	return prevAllocs / 2000
}

// Diff compares cur against prev entry-by-entry (matched by name) and
// renders a fixed-width regression report. An entry regresses when its
// ns/op grew by more than nsTol relative to prev, or when its allocs/op
// increased beyond allocSlack (zero for hot-path entries). Entries
// present on only one side are reported but never count as regressions.
// The second return is true when at least one entry regressed.
func Diff(prev, cur Report, nsTol float64) (string, bool) {
	prevByName := make(map[string]Entry, len(prev.Entries))
	for _, e := range prev.Entries {
		prevByName[e.Name] = e
	}
	var b strings.Builder
	fmt.Fprintf(&b, "bench diff: %s vs %s (fail on >%.0f%% ns/op or allocs/op up >0.05%%)\n",
		labelOr(cur.Label, "current"), labelOr(prev.Label, "previous"), nsTol*100)
	if cur.Count > 1 {
		fmt.Fprintf(&b, "current entries are medians of %d runs\n", cur.Count)
	}
	fmt.Fprintf(&b, "%-28s %12s %12s %8s %8s %8s  %s\n",
		"name", "prev ns/op", "cur ns/op", "ns Δ", "allocs", "allocs'", "verdict")

	regressed := 0
	for _, c := range cur.Entries {
		p, ok := prevByName[c.Name]
		if !ok {
			fmt.Fprintf(&b, "%-28s %12s %12.0f %8s %8s %8d  new\n",
				c.Name, "-", c.NsPerOp, "-", "-", c.AllocsPerOp)
			continue
		}
		delete(prevByName, c.Name)
		delta := 0.0
		if p.NsPerOp > 0 {
			delta = (c.NsPerOp - p.NsPerOp) / p.NsPerOp
		}
		verdict := "ok"
		if delta > nsTol {
			verdict = "REGRESSED ns/op"
		}
		if c.AllocsPerOp > p.AllocsPerOp+allocSlack(p.AllocsPerOp) {
			if verdict != "ok" {
				verdict += "+allocs"
			} else {
				verdict = "REGRESSED allocs/op"
			}
		}
		if verdict != "ok" {
			regressed++
		}
		fmt.Fprintf(&b, "%-28s %12.0f %12.0f %+7.1f%% %8d %8d  %s\n",
			c.Name, p.NsPerOp, c.NsPerOp, delta*100, p.AllocsPerOp, c.AllocsPerOp, verdict)
	}
	var dropped []string
	for name := range prevByName {
		dropped = append(dropped, name)
	}
	sort.Strings(dropped)
	for _, name := range dropped {
		fmt.Fprintf(&b, "%-28s %12.0f %12s %8s %8d %8s  dropped\n",
			name, prevByName[name].NsPerOp, "-", "-", prevByName[name].AllocsPerOp, "-")
	}
	if regressed > 0 {
		fmt.Fprintf(&b, "REGRESSION: %d entr%s regressed\n", regressed, plural(regressed))
	} else {
		fmt.Fprintf(&b, "ok: no regressions\n")
	}
	return b.String(), regressed > 0
}

func labelOr(label, fallback string) string {
	if label == "" {
		return fallback
	}
	return label
}

func plural(n int) string {
	if n == 1 {
		return "y"
	}
	return "ies"
}
