package main

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden diff report")

// fixtureReports builds a prev/cur pair covering every verdict the
// diff mode can emit: ok (improvement and small drift), ns/op
// regression above tolerance, allocs/op regression, combined
// regression, a new entry and a dropped entry.
func fixtureReports() (Report, Report) {
	prev := Report{
		Label: "pr1",
		Entries: []Entry{
			{Name: "Step/Line32/FIFO", NsPerOp: 2000, AllocsPerOp: 4},
			{Name: "Step/Line32/LIS", NsPerOp: 3000, AllocsPerOp: 4},
			{Name: "Step/Ring16/FIFO", NsPerOp: 1000, AllocsPerOp: 0},
			{Name: "Step/Ring16/NTG", NsPerOp: 1500, AllocsPerOp: 2},
			{Name: "StepSeededFIFO/S=1024", NsPerOp: 400, AllocsPerOp: 0},
			{Name: "Step/Geps/FIFO", NsPerOp: 2500, AllocsPerOp: 3},
		},
	}
	cur := Report{
		Label: "pr2",
		Count: 5,
		Entries: []Entry{
			{Name: "Step/Line32/FIFO", NsPerOp: 1800, AllocsPerOp: 0},          // improved
			{Name: "Step/Line32/LIS", NsPerOp: 3240, AllocsPerOp: 4},           // +8%: within tolerance
			{Name: "Step/Ring16/FIFO", NsPerOp: 1150, AllocsPerOp: 0},          // +15%: ns regression
			{Name: "Step/Ring16/NTG", NsPerOp: 1500, AllocsPerOp: 3},           // allocs regression
			{Name: "StepSeededFIFO/S=1024", NsPerOp: 480, AllocsPerOp: 1},      // both
			{Name: "StepRecorded/Line256/FIFO", NsPerOp: 2100, AllocsPerOp: 0}, // new
		},
	}
	return prev, cur
}

// TestDiffGolden pins the regression report's exact rendering. Refresh
// with `go test ./cmd/bench -run TestDiffGolden -update` after an
// intentional format change.
func TestDiffGolden(t *testing.T) {
	prev, cur := fixtureReports()
	got, regressed := Diff(prev, cur, DefaultNsTolerance)
	if !regressed {
		t.Fatal("fixture injects regressions; Diff reported none")
	}
	golden := filepath.Join("testdata", "diff_golden.txt")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("diff report drifted from golden file.\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestDiffVerdicts checks the pass/fail decision around the tolerance
// boundary, which the driver relies on for the nonzero exit.
func TestDiffVerdicts(t *testing.T) {
	base := Report{Entries: []Entry{{Name: "a", NsPerOp: 1000, AllocsPerOp: 2}}}
	cases := []struct {
		name      string
		cur       Entry
		regressed bool
	}{
		{"identical", Entry{Name: "a", NsPerOp: 1000, AllocsPerOp: 2}, false},
		{"improved", Entry{Name: "a", NsPerOp: 700, AllocsPerOp: 0}, false},
		{"at tolerance", Entry{Name: "a", NsPerOp: 1100, AllocsPerOp: 2}, false},
		{"just above tolerance", Entry{Name: "a", NsPerOp: 1101, AllocsPerOp: 2}, true},
		{"alloc bump only", Entry{Name: "a", NsPerOp: 900, AllocsPerOp: 3}, true},
		{"injected 15%", Entry{Name: "a", NsPerOp: 1150, AllocsPerOp: 2}, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, regressed := Diff(base, Report{Entries: []Entry{c.cur}}, DefaultNsTolerance)
			if regressed != c.regressed {
				t.Errorf("regressed = %v, want %v", regressed, c.regressed)
			}
		})
	}
}

// TestDiffAllocSlack pins the macro-entry allowance: zero-alloc gates
// and small counts stay strict (any increase fails) while whole-run
// entries with tens of thousands of allocs/op absorb the single-digit
// background-runtime drift that tracks binary composition.
func TestDiffAllocSlack(t *testing.T) {
	cases := []struct {
		name      string
		prev, cur int64
		regressed bool
	}{
		{"zero stays strict", 0, 1, true},
		{"small count strict", 1999, 2000, true},
		{"macro within slack", 24124, 24128, false},
		{"macro at slack", 87566, 87609, false},
		{"macro beyond slack", 87566, 87610, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			prev := Report{Entries: []Entry{{Name: "a", NsPerOp: 1000, AllocsPerOp: c.prev}}}
			cur := Report{Entries: []Entry{{Name: "a", NsPerOp: 1000, AllocsPerOp: c.cur}}}
			_, regressed := Diff(prev, cur, DefaultNsTolerance)
			if regressed != c.regressed {
				t.Errorf("%d -> %d: regressed = %v, want %v", c.prev, c.cur, regressed, c.regressed)
			}
		})
	}
}

// TestDiffIgnoresNewAndDropped ensures coverage changes alone never
// fail the gate.
func TestDiffIgnoresNewAndDropped(t *testing.T) {
	prev := Report{Entries: []Entry{{Name: "old", NsPerOp: 100}}}
	cur := Report{Entries: []Entry{{Name: "new", NsPerOp: 9000, AllocsPerOp: 50}}}
	if _, regressed := Diff(prev, cur, DefaultNsTolerance); regressed {
		t.Error("new+dropped entries alone must not regress")
	}
}
