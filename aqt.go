// Package aqt is an adversarial queuing theory toolkit: a
// discrete-time simulator for packet networks under adversarial
// injections, the scheduling-policy zoo of the AQT literature, (w,r)
// and rate-r adversaries with compliance validators, and a complete
// executable reproduction of
//
//		Z. Lotker, B. Patt-Shamir, A. Rosén,
//		"New stability results for adversarial queuing",
//		SPAA 2002 / SIAM J. Comput. 33(2):286–303, 2004:
//
//	  - FIFO is unstable at every injection rate r = 1/2 + ε
//	    (gadget pumps, daisy chains, stitching; Theorem 3.17);
//	  - every greedy protocol is stable at r ≤ 1/(d+1), and every
//	    time-priority protocol (FIFO, LIS) at r ≤ 1/d, with per-buffer
//	    residence at most floor(w·r) (Theorems 4.1 and 4.3).
//
// This root package is a facade: it re-exports the library's public
// surface via type aliases so that downstream code imports only "aqt"
// while the implementation lives in internal packages. Start with
// NewEngine (simulation), Solve/NewInstability (the paper's
// construction), or the Experiments registry (every table of
// EXPERIMENTS.md).
package aqt

import (
	"aqt/internal/adversary"
	"aqt/internal/baselines"
	"aqt/internal/core"
	"aqt/internal/expt"
	"aqt/internal/gadget"
	"aqt/internal/graph"
	"aqt/internal/obs"
	"aqt/internal/packet"
	"aqt/internal/policy"
	"aqt/internal/rational"
	"aqt/internal/sim"
	"aqt/internal/stability"
)

// Graph model.
type (
	// Graph is a directed multigraph; nodes are switches, edges are
	// unit-capacity links with a buffer at the tail.
	Graph = graph.Graph
	// NodeID identifies a node.
	NodeID = graph.NodeID
	// EdgeID identifies an edge.
	EdgeID = graph.EdgeID
	// Edge is one directed link.
	Edge = graph.Edge
)

// Graph constructors.
var (
	// NewGraph returns an empty graph.
	NewGraph = graph.New
	// Line returns a directed path with n edges.
	Line = graph.Line
	// Ring returns a directed cycle with n edges.
	Ring = graph.Ring
	// Complete returns the complete directed graph on n nodes.
	Complete = graph.Complete
	// Grid returns a rows x cols DAG grid.
	Grid = graph.Grid
	// RandomDAG returns a seeded random DAG with n nodes and m edges.
	RandomDAG = graph.RandomDAG
)

// Packets and injections.
type (
	// Packet is a packet in flight; treat as read-only.
	Packet = packet.Packet
	// Injection describes one packet an adversary injects.
	Injection = packet.Injection
)

// Injection helpers.
var (
	// Inj builds an Injection from edge IDs.
	Inj = packet.Inj
	// InjNamed builds an Injection from named edges.
	InjNamed = packet.InjNamed
)

// Scheduling policies (Policy is the strategy interface; the concrete
// types FIFO, LIFO, LIS, SIS, FTG, NTG, FFS, NFS are the literature's
// standard contention-resolution rules).
type (
	// Policy selects which packet crosses an edge each step.
	Policy = policy.Policy
	// PolicyTraits classifies a policy (historic / time-priority /
	// universally stable).
	PolicyTraits = policy.Traits
	// FIFO is first-in-first-out.
	FIFO = policy.FIFO
	// LIFO is last-in-first-out.
	LIFO = policy.LIFO
	// LIS is longest-in-system.
	LIS = policy.LIS
	// SIS is shortest-in-system.
	SIS = policy.SIS
	// FTG is furthest-to-go.
	FTG = policy.FTG
	// NTG is nearest-to-go.
	NTG = policy.NTG
	// FFS is furthest-from-source.
	FFS = policy.FFS
	// NFS is nearest-from-source.
	NFS = policy.NFS
)

// Policy registry.
var (
	// Policies returns one instance of every deterministic policy.
	Policies = policy.All
	// PolicyByName resolves a policy by its canonical name.
	PolicyByName = policy.ByName
)

// Simulation engine.
type (
	// Engine executes a network under a policy and an adversary.
	Engine = sim.Engine
	// EngineConfig tunes engine checking.
	EngineConfig = sim.Config
	// Adversary injects packets and may reroute them.
	Adversary = sim.Adversary
	// Observer is notified after every step.
	Observer = sim.Observer
	// Recorder samples queue-size series.
	Recorder = sim.Recorder
	// Snapshot summarizes engine state.
	Snapshot = sim.Snapshot
	// LatencyObserver records end-to-end packet latencies.
	LatencyObserver = sim.LatencyObserver
	// LatencyStats summarizes recorded latencies.
	LatencyStats = sim.LatencyStats
)

// Engine constructors.
var (
	// NewEngine returns an engine (nil adversary = no injections).
	NewEngine = sim.New
	// NewRecorder returns a queue-size recorder sampling every stride
	// steps.
	NewRecorder = sim.NewRecorder
)

// Observability: the flight recorder, metrics registry and sweep
// telemetry of internal/obs.
type (
	// FlightRecorder keeps the latest N engine events in a ring and can
	// dump them as JSONL (automatically on invariant failure via
	// AutoDump). Register with Engine.AddEventObserver.
	FlightRecorder = obs.FlightRecorder
	// MetricsRegistry is a goroutine-confined set of counters and
	// log2-bucketed histograms; snapshots merge across workers.
	MetricsRegistry = obs.Registry
	// MetricsSnapshot is a mergeable point-in-time registry view.
	MetricsSnapshot = obs.Snapshot
	// Meter instruments one engine with the standard metrics.
	Meter = obs.Meter
	// SweepProgress is one probe-layer progress report.
	SweepProgress = obs.SweepProgress
	// StatusLine renders SweepProgress as a live stderr line.
	StatusLine = obs.StatusLine
)

// Observability constructors.
var (
	// NewFlightRecorder returns a keep-latest event ring.
	NewFlightRecorder = obs.NewFlightRecorder
	// NewMetricsRegistry returns an empty metrics registry.
	NewMetricsRegistry = obs.NewRegistry
	// NewMeter returns a standard engine meter (nil = fresh registry).
	NewMeter = obs.NewMeter
	// NewStatusLine returns a throttled progress line writing to w.
	NewStatusLine = obs.NewStatusLine
)

// Exact rational rates.
type (
	// Rat is an exact rational rate.
	Rat = rational.Rat
)

// Rate constructors.
var (
	// R returns the rational num/den.
	R = rational.New
	// RatFromFloat approximates a float rate by a rational.
	RatFromFloat = rational.FromFloat
)

// Adversaries and validators.
type (
	// Stream is one paced injection stream.
	Stream = adversary.Stream
	// Script is an adversary assembled from streams.
	Script = adversary.Script
	// RandomWR generates random (w,r)-compliant traffic.
	RandomWR = adversary.RandomWR
	// RateValidator checks the rate-r adversary constraint.
	RateValidator = adversary.RateValidator
	// WindowValidator checks the (w,r) windowed constraint.
	WindowValidator = adversary.WindowValidator
	// Rerouter validates and performs Lemma 3.3 reroutes.
	Rerouter = adversary.Rerouter
	// BurstStream injects periodic single-step bursts.
	BurstStream = adversary.BurstStream
	// ScheduleRecorder captures an execution's full injection schedule.
	ScheduleRecorder = adversary.ScheduleRecorder
	// Replay re-issues a recorded schedule obliviously.
	Replay = adversary.Replay
)

// Adversary constructors.
var (
	// NewScript returns a Script over the given streams.
	NewScript = adversary.NewScript
	// NewRandomWR returns a seeded random (w,r) generator.
	NewRandomWR = adversary.NewRandomWR
	// NewRateValidator returns a rate-r compliance validator.
	NewRateValidator = adversary.NewRateValidator
	// NewWindowValidator returns a (w,r) compliance validator.
	NewWindowValidator = adversary.NewWindowValidator
	// NewBurstScript wraps burst streams into an adversary.
	NewBurstScript = adversary.NewBurstScript
	// MaxWindowBurst builds an extremal bursty (w,r) adversary.
	MaxWindowBurst = adversary.MaxWindowBurst
	// NewScheduleRecorder returns an empty schedule recorder.
	NewScheduleRecorder = adversary.NewScheduleRecorder
	// NewReplay builds an oblivious replay adversary from a recording.
	NewReplay = adversary.NewReplay
)

// The paper's construction (internal/core).
type (
	// Params are the solved construction parameters for an ε.
	Params = core.Params
	// Instability drives the Theorem 3.17 construction.
	Instability = core.Instability
	// InstabilityOptions tunes NewInstability.
	InstabilityOptions = core.InstabilityOptions
	// CycleRecord traces one adversary cycle.
	CycleRecord = core.CycleRecord
	// Chain is a daisy chain of Fₙ gadgets (G_ε when stitched).
	Chain = gadget.Chain
)

// Construction entry points.
var (
	// Solve computes (n, S0) for a given ε (section 3.2 + appendix).
	Solve = core.Solve
	// ParamsFor builds parameters for an explicit rate and depth.
	ParamsFor = core.ParamsFor
	// NewInstability builds G_ε, the FIFO engine and the initial
	// configuration for Theorem 3.17.
	NewInstability = core.NewInstability
	// NewChain builds F^M_n, optionally closed by the stitch edge e0.
	NewChain = gadget.NewChain
)

// Stability analysis (section 4).
type (
	// ResidenceResult reports one Theorem 4.1/4.3 check.
	ResidenceResult = stability.ResidenceResult
	// Verdict classifies a queue series as stable or diverging.
	Verdict = stability.Verdict
)

// Stability helpers.
var (
	// ResidenceBound returns floor(w·r), the theorems' bound.
	ResidenceBound = stability.ResidenceBound
	// GreedyRateBound returns 1/(d+1) (Theorem 4.1).
	GreedyRateBound = stability.GreedyRateBound
	// TimePriorityRateBound returns 1/d (Theorem 4.3).
	TimePriorityRateBound = stability.TimePriorityRateBound
	// CheckResidence runs a residence-bound check.
	CheckResidence = stability.CheckResidence
	// Classify inspects a queue series.
	Classify = stability.Classify
	// ThresholdSearch locates an instability threshold by rate bisection.
	ThresholdSearch = stability.ThresholdSearch
)

// Verdict values.
const (
	// Stable means the backlog stopped growing.
	Stable = stability.Stable
	// Diverging means the backlog keeps growing.
	Diverging = stability.Diverging
	// Inconclusive means not enough signal.
	Inconclusive = stability.Inconclusive
)

// Experiments (the tables of EXPERIMENTS.md).
type (
	// ExperimentTable is one experiment's rendered result.
	ExperimentTable = expt.Table
	// Experiment is one registered experiment runner.
	Experiment = expt.Runner
)

// Experiment registry.
var (
	// Experiments returns every experiment in DESIGN.md order.
	Experiments = expt.All
	// ExperimentByID resolves an experiment by id ("E1".."B4").
	ExperimentByID = expt.ByID
)

// Baselines.
var (
	// DepthThreshold returns r*(n), the pump threshold at depth n.
	DepthThreshold = baselines.DepthThreshold
	// PumpsAtDepth reports whether depth n pumps at rate r.
	PumpsAtDepth = baselines.PumpsAtDepth
)
