package aqt_test

import (
	"fmt"

	"aqt"
)

// The smallest possible simulation: one packet crossing a 3-edge path.
func ExampleNewEngine() {
	g := aqt.Line(3)
	e := aqt.NewEngine(g, aqt.FIFO{}, nil)
	e.Seed(aqt.InjNamed(g, "e1", "e2", "e3"))
	e.Run(3)
	fmt.Println("absorbed:", e.Absorbed())
	// Output: absorbed: 1
}

// Solving the paper's construction parameters for ε = 1/5 (so the
// adversary rate is r = 0.7).
func ExampleSolve() {
	p := aqt.Solve(aqt.R(1, 5))
	fmt.Printf("r=%v n=%d S0=%d\n", p.R, p.N, p.S0)
	// Output: r=7/10 n=9 S0=1156
}

// The Theorem 4.1 residence bound floor(w·r) for a (w, r) = (40, 1/4)
// adversary.
func ExampleResidenceBound() {
	fmt.Println(aqt.ResidenceBound(40, aqt.R(1, 4)))
	// Output: 10
}

// The depth-3 pipeline threshold is the golden-ratio conjugate: below
// it no gadget of depth 3 can pump.
func ExampleDepthThreshold() {
	fmt.Printf("%.4f\n", aqt.DepthThreshold(3, 20).Float())
	// Output: 0.6180
}

// A scripted rate-1/2 stream: exactly floor(t/2) packets after t
// active steps.
func ExampleNewScript() {
	g := aqt.Line(1)
	s := aqt.NewScript(aqt.Stream{
		Start: 1, Rate: aqt.R(1, 2), Budget: 5,
		Route: []aqt.EdgeID{g.MustEdge("e1")},
	})
	e := aqt.NewEngine(g, aqt.FIFO{}, s)
	e.Run(10)
	fmt.Println("injected:", e.Injected())
	// Output: injected: 5
}
