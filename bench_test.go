// Benchmarks regenerating every experiment of DESIGN.md (one per
// table/figure row) plus raw engine throughput. Each experiment bench
// runs the corresponding internal/expt runner in quick mode and
// reports its headline quantity via b.ReportMetric; run with
//
//	go test -bench=. -benchmem
//
// and see EXPERIMENTS.md for the recorded full-size tables.
package aqt_test

import (
	"strconv"
	"testing"

	"aqt"
	"aqt/internal/expt"
)

// benchExperiment runs one experiment runner per iteration and fails
// the bench if the experiment's own pass criteria do not hold.
func benchExperiment(b *testing.B, id string) {
	r := expt.ByID(id)
	if r == nil {
		b.Fatalf("no experiment %s", id)
	}
	for i := 0; i < b.N; i++ {
		tab := r.Run(true)
		if !tab.OK {
			b.Fatalf("%s failed its pass criteria", id)
		}
		b.ReportMetric(float64(len(tab.Rows)), "rows")
	}
}

func BenchmarkE1_Theorem317_Instability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ins := aqt.NewInstability(aqt.R(1, 4), aqt.InstabilityOptions{MarginM: aqt.R(3, 2)})
		if ins.RunCycles(2) != 2 || !ins.Unstable() {
			b.Fatal("instability did not reproduce")
		}
		last := ins.Cycles[len(ins.Cycles)-1]
		b.ReportMetric(last.Growth(), "growth/cycle")
		b.ReportMetric(float64(last.Steps), "steps/cycle")
	}
}

func BenchmarkE2_Lemma36_GadgetPump(b *testing.B)        { benchExperiment(b, "E2") }
func BenchmarkE3_Lemma315_Bootstrap(b *testing.B)        { benchExperiment(b, "E3") }
func BenchmarkE4_Lemma316_Stitch(b *testing.B)           { benchExperiment(b, "E4") }
func BenchmarkE5_Lemma313_ChainPump(b *testing.B)        { benchExperiment(b, "E5") }
func BenchmarkE6_Lemma33_Reroute(b *testing.B)           { benchExperiment(b, "E6") }
func BenchmarkE7_Theorem41_GreedyStability(b *testing.B) { benchExperiment(b, "E7") }
func BenchmarkE8_Theorem43_TimePriority(b *testing.B)    { benchExperiment(b, "E8") }
func BenchmarkE9_Observation44(b *testing.B)             { benchExperiment(b, "E9") }
func BenchmarkE10_Claims_Invariants(b *testing.B)        { benchExperiment(b, "E10") }
func BenchmarkE11_Appendix_Asymptotics(b *testing.B)     { benchExperiment(b, "E11") }
func BenchmarkE12_ObliviousReplay(b *testing.B)          { benchExperiment(b, "E12") }
func BenchmarkE13_NearHalfSweep(b *testing.B)            { benchExperiment(b, "E13") }
func BenchmarkE14_BoundedBuffers(b *testing.B)           { benchExperiment(b, "E14") }
func BenchmarkF1_Figure31_Gadget(b *testing.B)           { benchExperiment(b, "F1") }
func BenchmarkF2_Figure32_GEpsilon(b *testing.B)         { benchExperiment(b, "F2") }
func BenchmarkB1_DepthThresholds(b *testing.B)           { benchExperiment(b, "B1") }
func BenchmarkB2_NTG_LowRate(b *testing.B)               { benchExperiment(b, "B2") }
func BenchmarkB3_PolicyZoo(b *testing.B)                 { benchExperiment(b, "B3") }
func BenchmarkB4_FIFO_Below_1_over_d(b *testing.B)       { benchExperiment(b, "B4") }
func BenchmarkA1_Ablation_ChainLength(b *testing.B)      { benchExperiment(b, "A1") }
func BenchmarkU1_UniversalStability(b *testing.B)        { benchExperiment(b, "U1") }
func BenchmarkH1_Heterogeneous(b *testing.B)             { benchExperiment(b, "H1") }

// --- raw engine throughput ---

// BenchmarkEngineStepsRing measures steps/second on a contended ring
// under random (w,r) traffic, per policy.
func BenchmarkEngineStepsRing(b *testing.B) {
	for _, pol := range aqt.Policies() {
		b.Run(pol.Name(), func(b *testing.B) {
			g := aqt.Ring(16)
			adv := aqt.NewRandomWR(g, 24, aqt.R(1, 3), 4, 5)
			e := aqt.NewEngine(g, pol, adv)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Step()
			}
			b.ReportMetric(float64(e.TotalQueued()), "backlog")
		})
	}
}

// BenchmarkEnginePumpStep measures per-step cost inside a hot gadget
// pump (large FIFO buffers, the paper's regime). When the seeded
// configuration drains, the engine is rebuilt and reseeded off the
// clock.
func BenchmarkEnginePumpStep(b *testing.B) {
	p := aqt.Solve(aqt.R(1, 5))
	for _, s := range []int64{1 << 10, 1 << 12, 1 << 14} {
		b.Run("S="+strconv.FormatInt(s, 10), func(b *testing.B) {
			c := aqt.NewChain(p.N, 2, false)
			e := aqt.NewEngine(c.G, aqt.FIFO{}, nil)
			c.SeedInvariant(e, 1, int(s))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if e.TotalQueued() == 0 {
					b.StopTimer()
					e = aqt.NewEngine(c.G, aqt.FIFO{}, nil)
					c.SeedInvariant(e, 1, int(s))
					b.StartTimer()
				}
				e.Step()
			}
		})
	}
}

// BenchmarkInjectionThroughput measures the adversary script path.
func BenchmarkInjectionThroughput(b *testing.B) {
	g := aqt.Line(1)
	e := aqt.NewEngine(g, aqt.FIFO{}, aqt.NewScript(aqt.Stream{
		Start: 1, Rate: aqt.R(1, 1), Budget: -1,
		Route: []aqt.EdgeID{0},
	}))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// BenchmarkParameterSolve measures the exact big.Rat parameter solver.
func BenchmarkParameterSolve(b *testing.B) {
	eps := aqt.R(1, 100)
	for i := 0; i < b.N; i++ {
		p := aqt.Solve(eps)
		if p.N == 0 {
			b.Fatal("bad solve")
		}
	}
}

// BenchmarkDepthThreshold measures the r*(n) bisection.
func BenchmarkDepthThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if aqt.DepthThreshold(16, 20).IsZero() {
			b.Fatal("bad threshold")
		}
	}
}
