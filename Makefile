# Developer entry points. `make verify` is the CI gate: tier-1
# (build + full tests) plus vet and the race detector over the engine,
# adversary and buffer hot paths — the packages the incremental
# max-queue and timestamp-ring bookkeeping live in — and over the
# parallel probe layer (stability.SweepGrid / ParallelThresholdSearch)
# and the experiment runners that fan out through it, plus the
# observability layer (internal/obs) riding both hot paths. The race
# package list also covers the leap engine (internal/sim leap windows,
# adversary StaticUntil horizons, obs leap observers) — the
# leap-vs-step differential property test runs under -race here.

GO ?= go

.PHONY: verify test vet race bench bench-diff sweep-smoke trace-smoke leap-smoke scenario-smoke drop-smoke checkpoint-smoke telemetry-smoke fuzz

verify: test vet race

test:
	$(GO) build ./...
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/sim/... ./internal/adversary/... ./internal/buffer/... ./internal/stability/... ./internal/expt/... ./internal/obs/... ./internal/scenario/...

# Emit a BENCH_<LABEL>.json trajectory point (default label: git short hash).
LABEL ?= $(shell git rev-parse --short HEAD 2>/dev/null || echo dev)
bench:
	$(GO) run ./cmd/bench -label $(LABEL)

# Diff the hot-path benchmarks against a previous trajectory point;
# exits nonzero on >10% ns/op or any allocs/op regression.
AGAINST ?= $(lastword $(sort $(wildcard BENCH_*.json)))
bench-diff:
	$(GO) run ./cmd/bench -against $(AGAINST)

# Quick end-to-end pass over both cmd/sweep modes at full fan-out —
# the same configurations cmd/sweep's golden tests pin byte-identical
# across -workers settings.
sweep-smoke:
	$(GO) run ./cmd/sweep -n 6 -from 0.5 -to 0.8 -points 7 -scap 800 -workers 0
	$(GO) run ./cmd/sweep -rate 0.7 -depths 3,4,6 -scap 800 -workers 0

# Flight-recorder end-to-end smoke: trace a short run on the G_ε
# instability graph; cmd/aqtsim self-validates the dump against the
# JSONL schema (exit nonzero on a schema break).
trace-smoke:
	$(GO) run ./cmd/aqtsim -topo geps -size 4 -policy FIFO -w 20 -rate 1/4 -steps 2000 -trace /tmp/aqt-trace-smoke.jsonl -metrics

# Leap-mode end-to-end smoke: the leap-vs-step differential tests plus
# a long cmd/aqtsim run under the extremal burst adversary with -leap,
# whose output (modulo ns/step) must match the stepped run exactly.
leap-smoke:
	$(GO) test ./internal/sim -run 'Leap' -count 1
	$(GO) run ./cmd/aqtsim -topo line -size 8 -adv burst -w 512 -rate 1/4 -maxlen 3 -steps 100000 -leap

# Scenario end-to-end smoke: strict-validate every checked-in spec,
# then build and run them all across the worker pool. Exit nonzero on
# any validation error, run panic or failed post-run check.
scenario-smoke:
	$(GO) run ./cmd/scenario validate scenarios/*.json
	$(GO) run ./cmd/scenario run -workers 0 scenarios/*.json

# Bounded-buffer end-to-end smoke: the drop-policy and leap-equivalence
# differential tests, the E14 goodput-vs-capacity experiment in quick
# mode, the bounded scenario spec, and a lossy cmd/aqtsim run under
# -cap/-drop (exact per-edge drop accounting is checked in-process by
# the engine's conservation law).
drop-smoke:
	$(GO) test ./internal/sim -run 'Drop|Bounded' -count 1
	$(GO) run ./cmd/experiments -quick -only E14
	$(GO) run ./cmd/scenario run scenarios/e14.json
	$(GO) run ./cmd/aqtsim -topo line -size 4 -adv burst -w 20 -rate 1/4 -cap 1 -drop head -steps 2000

# Checkpoint/restore end-to-end smoke: the corpus-wide resume
# differential tests, then a cmd/aqtsim split run (800 + 1200 steps
# through a checkpoint file must match 2000 straight, modulo ns/step)
# and a scenario run that both writes segment checkpoints and resumes
# from the last one.
checkpoint-smoke:
	$(GO) test ./internal/scenario -run 'Checkpoint' -count 1
	$(GO) test ./internal/sim -run 'Checkpoint' -count 1
	$(GO) run ./cmd/aqtsim -topo ring -size 6 -steps 800 -seed 3 -checkpoint /tmp/aqt-ckpt-smoke.json
	$(GO) run ./cmd/aqtsim -topo ring -size 6 -steps 1200 -seed 3 -restore /tmp/aqt-ckpt-smoke.json
	$(GO) run ./cmd/scenario run -checkpoint-every 250 -checkpoint-dir /tmp/aqt-ckpt-smoke scenarios/quickstart.json
	$(GO) run ./cmd/scenario run -restore /tmp/aqt-ckpt-smoke/quickstart-two-phase.ckpt.json scenarios/quickstart.json

# Live-telemetry end-to-end smoke: serve scenario E13 over HTTP with
# -serve-hold, poll /healthz until the server is up, scrape /metrics,
# /series and /trace off the live server and check each carries its
# expected content, then kill the server. The aqtsim run at the end
# exercises the sampler + span tracer through -trace, whose dump is
# self-validated against the JSONL schema (exit nonzero on a break).
TELEMETRY_ADDR ?= 127.0.0.1:9464
telemetry-smoke:
	$(GO) build -o /tmp/aqt-scenario-smoke ./cmd/scenario
	/tmp/aqt-scenario-smoke run -serve $(TELEMETRY_ADDR) -serve-hold -sample-every 64 scenarios/e13.json & \
	pid=$$!; \
	trap 'kill $$pid 2>/dev/null' EXIT; \
	ok=; for i in $$(seq 1 100); do \
		curl -fsS http://$(TELEMETRY_ADDR)/healthz >/dev/null 2>&1 && ok=1 && break; sleep 0.1; \
	done; \
	test -n "$$ok" || { echo "telemetry-smoke: server never came up on $(TELEMETRY_ADDR)"; exit 1; }; \
	ok=; for i in $$(seq 1 300); do \
		curl -fsS http://$(TELEMETRY_ADDR)/series 2>/dev/null | grep -q '"kind":"sample"' && ok=1 && break; sleep 0.1; \
	done; \
	test -n "$$ok" || { echo "telemetry-smoke: /series never published a sample"; exit 1; }; \
	curl -fsS http://$(TELEMETRY_ADDR)/healthz | grep -q '^ok' || { echo "telemetry-smoke: bad /healthz"; exit 1; }; \
	curl -fsS http://$(TELEMETRY_ADDR)/metrics | grep -q '^# TYPE aqt_' || { echo "telemetry-smoke: /metrics has no aqt_ families"; exit 1; }; \
	curl -fsS http://$(TELEMETRY_ADDR)/trace >/dev/null || { echo "telemetry-smoke: /trace unreachable"; exit 1; }; \
	echo "telemetry-smoke: live endpoints ok"
	$(GO) run ./cmd/aqtsim -topo line -size 8 -adv burst -w 64 -rate 1/4 -steps 4000 -sample-every 16 -spans 1 -trace /tmp/aqt-telemetry-smoke.jsonl

fuzz:
	$(GO) test -fuzz FuzzRandomWRWindow -fuzztime 30s ./internal/adversary
	$(GO) test -fuzz FuzzKeyedHeapAgreement -fuzztime 30s ./internal/sim
	$(GO) test -fuzz FuzzDropPolicy -fuzztime 30s ./internal/sim
	$(GO) test -fuzz FuzzScenarioLoad -fuzztime 30s ./internal/scenario
	$(GO) test -fuzz FuzzCheckpointLoad -fuzztime 30s ./internal/scenario
